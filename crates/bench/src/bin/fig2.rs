//! Fig. 2: CDF of job queuing times under constraints — Yahoo (a) and
//! Cloudera (b) — for Hawk-C, Eagle-C and Yaq-d, against the unconstrained
//! baseline (the same workload with its constraints stripped).
//!
//! Expected shape (paper): Hawk-C suffers the heaviest queuing delays;
//! Eagle-C and Yaq-d sit 2–2.5× above the unconstrained baseline.

use phoenix_bench::{Scale, SchedulerKind};
use phoenix_constraints::{ConstraintSet, FeasibilityIndex, MachinePopulation};
use phoenix_metrics::{render_chart, Distribution, Series, Table};
use phoenix_sim::{SimConfig, SimResult, Simulation};
use phoenix_traces::{Trace, TraceGenerator, TraceProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    for profile in [TraceProfile::yahoo(), TraceProfile::cloudera()] {
        run_panel(&profile, &scale);
    }
}

/// Runs one scheduler over a pre-built trace on a pre-built cluster.
fn run_on(
    machines: &[phoenix_constraints::AttributeVector],
    trace: &Trace,
    kind: SchedulerKind,
    cutoff: f64,
    seed: u64,
) -> SimResult {
    Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(machines.to_vec()),
        trace,
        kind.build(cutoff),
        seed,
    )
    .run()
}

fn run_panel(profile: &TraceProfile, scale: &Scale) {
    let nodes = scale.nodes_for(profile);
    let cutoff = profile.short_cutoff_s();
    let kinds = [
        SchedulerKind::HawkC,
        SchedulerKind::EagleC,
        SchedulerKind::YaqD,
    ];
    let mut columns: Vec<(String, Distribution)> = kinds
        .iter()
        .map(|k| (k.name().to_string(), Distribution::new()))
        .collect();
    let mut baseline = Distribution::new();
    for seed in scale.seed_list() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
        let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
        let machines = cluster.into_machines();
        let trace = TraceGenerator::new(profile.clone(), seed).generate(scale.jobs, nodes, 0.9);
        for (ki, &kind) in kinds.iter().enumerate() {
            let r = run_on(&machines, &trace, kind, cutoff, seed);
            columns[ki].1.merge(&r.metrics.job_queuing.overall());
        }
        // Baseline: the *same jobs* with their constraints stripped —
        // "the task queuing delay in case of jobs without constraints".
        let stripped = Trace::new(
            trace.name(),
            trace
                .iter()
                .map(|j| {
                    let mut job = j.clone();
                    job.constraints = ConstraintSet::unconstrained();
                    job
                })
                .collect(),
        );
        let r = run_on(&machines, &stripped, SchedulerKind::EagleC, cutoff, seed);
        baseline.merge(&r.metrics.job_queuing.overall());
    }
    columns.push(("baseline".to_string(), baseline));

    println!(
        "== Fig. 2 ({}): job queuing time CDF, {} nodes, high load ==",
        profile.name, nodes
    );
    let mut header = vec!["CDF".to_string()];
    header.extend(columns.iter().map(|(n, _)| format!("{n} (s)")));
    let mut table = Table::new(header);
    for pct in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0] {
        let mut row = vec![format!("{:.2}", pct / 100.0)];
        for (_, dist) in columns.iter_mut() {
            row.push(format!("{:.2}", dist.percentile(pct)));
        }
        table.add_row(row);
    }
    println!("{table}");

    // Shape view: the CDFs as an ASCII chart (x = queuing seconds,
    // y = cumulative fraction), clipped at p99 to keep the x range useful.
    let clip = columns
        .iter_mut()
        .map(|(_, d)| d.percentile(99.0))
        .fold(0.0f64, f64::max);
    let series: Vec<Series> = columns
        .iter_mut()
        .map(|(name, dist)| {
            let points = dist
                .cdf(64)
                .into_iter()
                .filter(|p| p.value <= clip)
                .map(|p| (p.value, p.fraction))
                .collect();
            Series::new(name.clone(), points)
        })
        .collect();
    print!(
        "{}",
        render_chart("CDF (x: queuing seconds, y: fraction)", &series, 72, 16)
    );
}
