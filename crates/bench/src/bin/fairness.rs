//! Fairness analysis (beyond the paper's plots; §I claims Phoenix "does
//! not affect the fairness ... of the other long and unconstrained jobs").
//!
//! Reports Jain's fairness index over per-job slowdowns (response over the
//! zero-wait ideal), per job group, for every scheduler: CRV reordering
//! must not redistribute latency onto unconstrained or long jobs.

use phoenix_bench::{run_many, RunSpec, Scale, SchedulerKind};
use phoenix_metrics::{jains_index, Table};
use phoenix_sim::JobOutcome;
use phoenix_traces::TraceProfile;

fn index_over(outcomes: &[&JobOutcome]) -> f64 {
    let slowdowns: Vec<f64> = outcomes.iter().filter_map(|o| o.slowdown()).collect();
    jains_index(&slowdowns)
}

fn main() {
    let scale = Scale::from_args();
    let profile = TraceProfile::google();
    let nodes = scale.nodes_for(&profile);
    println!(
        "== fairness: Jain's index over per-job slowdowns (google, {} nodes, high load) ==",
        nodes
    );
    let mut table = Table::new(vec![
        "scheduler",
        "all jobs",
        "short constrained",
        "short unconstrained",
        "long jobs",
        "per-user",
        "mean short slowdown",
    ]);
    for kind in [
        SchedulerKind::Phoenix,
        SchedulerKind::EagleC,
        SchedulerKind::HawkC,
        SchedulerKind::SparrowC,
        SchedulerKind::YaqD,
        SchedulerKind::MercuryC,
        SchedulerKind::MonolithicC,
        SchedulerKind::ChoosyC,
    ] {
        let specs: Vec<RunSpec> = scale
            .seed_list()
            .into_iter()
            .map(|seed| {
                let mut spec = RunSpec::new(profile.clone(), kind).with_seed(seed);
                spec.nodes = nodes;
                spec.gen_nodes = nodes;
                spec.gen_util = 0.92;
                spec.jobs = scale.jobs;
                spec.record_task_waits = false;
                spec
            })
            .collect();
        let results = run_many(&specs);
        let outcomes: Vec<&JobOutcome> =
            results.iter().flat_map(|r| r.job_outcomes.iter()).collect();
        let all = index_over(&outcomes);
        let short_constrained: Vec<&JobOutcome> = outcomes
            .iter()
            .copied()
            .filter(|o| o.short && o.constrained)
            .collect();
        let short_unconstrained: Vec<&JobOutcome> = outcomes
            .iter()
            .copied()
            .filter(|o| o.short && !o.constrained)
            .collect();
        let long: Vec<&JobOutcome> = outcomes.iter().copied().filter(|o| !o.short).collect();
        // Per-user fairness: Jain's index over users' mean slowdowns.
        let per_user = {
            let mut sums: std::collections::HashMap<u32, (f64, usize)> =
                std::collections::HashMap::new();
            for o in &outcomes {
                if let Some(s) = o.slowdown() {
                    let e = sums.entry(o.user).or_insert((0.0, 0));
                    e.0 += s;
                    e.1 += 1;
                }
            }
            let means: Vec<f64> = sums.values().map(|(s, n)| s / *n as f64).collect();
            jains_index(&means)
        };
        let mean_short_slowdown = {
            let s: Vec<f64> = outcomes
                .iter()
                .filter(|o| o.short)
                .filter_map(|o| o.slowdown())
                .collect();
            s.iter().sum::<f64>() / s.len().max(1) as f64
        };
        table.add_row(vec![
            kind.name().to_string(),
            format!("{:.3}", all),
            format!("{:.3}", index_over(&short_constrained)),
            format!("{:.3}", index_over(&short_unconstrained)),
            format!("{:.3}", index_over(&long)),
            format!("{:.3}", per_user),
            format!("{:.2}", mean_short_slowdown),
        ]);
    }
    println!("{table}");
    println!(
        "expectation: Phoenix's fairness indices are at least Eagle-C's —\n\
         the starvation slack prevents CRV reordering from concentrating\n\
         latency on any job group."
    );
}
