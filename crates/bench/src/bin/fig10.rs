//! Fig. 10: short-job response times of Phoenix normalized to Hawk-C on the
//! Google trace, across cluster sizes.
//!
//! Expected shape (paper): Phoenix takes only ~21 % of Hawk-C's p90 (~18 %
//! of its p99) at 86 % utilization — i.e. 4.7x/5.5x better — shrinking to
//! ~1.25-1.3x at 40 % utilization.

use phoenix_bench::{print_normalized_sweep, sweep, Scale, SchedulerKind};
use phoenix_traces::TraceProfile;

fn main() {
    let scale = Scale::from_args();
    let points = sweep(
        &TraceProfile::google(),
        &[SchedulerKind::Phoenix, SchedulerKind::HawkC],
        &scale,
        0.92,
    );
    print_normalized_sweep(
        "Fig. 10 (google): short jobs, phoenix / hawk-c",
        &points,
        |s| s.short_response,
    );
}
