//! Fig. 8: long-job response times (p50/p90/p99) of Phoenix normalized to
//! Eagle-C across cluster sizes, for all three traces.
//!
//! Expected shape (paper): ratios ~1.0 everywhere — CRV reordering must not
//! hurt long jobs.

use phoenix_bench::{print_normalized_sweep, sweep, Scale, SchedulerKind};
use phoenix_traces::TraceProfile;

fn main() {
    let scale = Scale::from_args();
    for profile in TraceProfile::all() {
        let points = sweep(
            &profile,
            &[SchedulerKind::Phoenix, SchedulerKind::EagleC],
            &scale,
            0.92,
        );
        print_normalized_sweep(
            &format!("Fig. 8 ({}): long jobs, phoenix / eagle-c", profile.name),
            &points,
            |s| s.long_response,
        );
    }
}
