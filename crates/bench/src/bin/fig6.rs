//! Fig. 6: constraint supply/demand distribution — percentage of jobs that
//! ask for k constraints (demand) vs. the average percentage of worker
//! nodes able to satisfy a k-constraint job (supply).
//!
//! Expected anchors (paper): ~33 % of jobs ask for two constraints but only
//! ~12 % of nodes satisfy them; supply drops to ~5 % at six constraints;
//! ~80 % of jobs ask for three or fewer.

use phoenix_constraints::{
    supply_curve, ConstraintModel, ConstraintStats, MachinePopulation, PopulationProfile,
};
use phoenix_metrics::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = ConstraintModel::google();
    let mut rng = StdRng::seed_from_u64(42);
    let population =
        MachinePopulation::generate(PopulationProfile::google_like(), 15_000, &mut rng);

    // Demand: distribution of constraint counts across constrained jobs.
    let mut stats = ConstraintStats::new();
    for _ in 0..100_000 {
        stats.record(&model.synthesize_set(&mut rng));
    }
    let demand = stats.demand_curve();
    let supply = supply_curve(&model, &population, 40_000, &mut rng);

    println!("== Fig. 6: constraints supply/demand distribution (google model, 15k nodes) ==");
    let mut table = Table::new(vec![
        "constraints",
        "demand of jobs (%)",
        "supply of nodes (%)",
    ]);
    for k in 0..6 {
        table.add_row(vec![
            (k + 1).to_string(),
            format!("{:.1}", demand[k]),
            format!("{:.1}", supply[k]),
        ]);
    }
    println!("{table}");
    let three_or_fewer: f64 = demand[..3].iter().sum();
    println!("jobs asking <= 3 constraints: {three_or_fewer:.1}% (paper: ~80%)");
}
