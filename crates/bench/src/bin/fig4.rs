//! Fig. 4: short-job response times of constrained jobs relative to
//! unconstrained jobs (p50/p90/p99) under Eagle-C, for all three traces.
//!
//! Expected shape (paper): constrained short jobs are ~1.7× slower at the
//! 99th percentile on average, worsening with utilization.

use phoenix_bench::{run_many, summarize, RunSpec, Scale, SchedulerKind};
use phoenix_metrics::Table;
use phoenix_traces::TraceProfile;

fn main() {
    let scale = Scale::from_args();
    println!("== Fig. 4: constrained/unconstrained short-job response ratio (eagle-c) ==");
    let mut table = Table::new(vec!["trace", "p50 ratio", "p90 ratio", "p99 ratio"]);
    for profile in TraceProfile::all() {
        let nodes = scale.nodes_for(&profile);
        let specs: Vec<RunSpec> = scale
            .seed_list()
            .into_iter()
            .map(|seed| {
                let mut spec = RunSpec::new(profile.clone(), SchedulerKind::EagleC).with_seed(seed);
                spec.nodes = nodes;
                spec.gen_nodes = nodes;
                spec.gen_util = 0.9;
                spec.jobs = scale.jobs;
                spec.record_task_waits = false;
                spec
            })
            .collect();
        let summary = summarize(&run_many(&specs));
        let ratio = summary
            .constrained_short_response
            .normalized_to(&summary.unconstrained_short_response);
        table.add_row(vec![
            profile.name.to_string(),
            format!("{:.2}", ratio.p50),
            format!("{:.2}", ratio.p90),
            format!("{:.2}", ratio.p99),
        ]);
    }
    println!("{table}");
}
