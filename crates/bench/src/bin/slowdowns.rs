//! Table II, slowdown column: the *emergent* relative slowdown of jobs
//! carrying each constraint kind, measured from simulation.
//!
//! The paper's Table II reports, per constraint kind, the slowdown of a
//! constrained job w.r.t. an equivalent unconstrained job (ISA 2.03×,
//! cores 1.90×, ..., min-disks 0.91×). Those numbers come from the Google
//! trace itself; here we measure what our synthetic workload *produces*
//! under Eagle-C — a closed-loop check that constraint contention in the
//! simulation causes slowdowns of the right order.

use phoenix_bench::{run_many, RunSpec, Scale, SchedulerKind};
use phoenix_constraints::ConstraintKind;
use phoenix_metrics::Table;
use phoenix_traces::{TraceGenerator, TraceProfile};

fn main() {
    let scale = Scale::from_args();
    let profile = TraceProfile::google();
    let nodes = scale.nodes_for(&profile);
    let specs: Vec<RunSpec> = scale
        .seed_list()
        .into_iter()
        .map(|seed| {
            let mut spec = RunSpec::new(profile.clone(), SchedulerKind::EagleC).with_seed(seed);
            spec.nodes = nodes;
            spec.gen_nodes = nodes;
            spec.gen_util = 0.92;
            spec.jobs = scale.jobs;
            spec.record_task_waits = false;
            spec
        })
        .collect();
    let results = run_many(&specs);

    // Mean *slowdown* (response / zero-wait ideal) of short jobs grouped by
    // the constraint kinds they carry, against unconstrained short jobs.
    let mut sums = [0.0f64; ConstraintKind::COUNT];
    let mut counts = [0usize; ConstraintKind::COUNT];
    let mut unconstrained_sum = 0.0f64;
    let mut unconstrained_count = 0usize;
    for (result, spec) in results.iter().zip(&specs) {
        // Rebuild the trace to recover each job's constraint kinds (the
        // outcome records only constrained yes/no).
        let trace = TraceGenerator::new(spec.profile.clone(), spec.seed).generate(
            spec.jobs,
            spec.gen_nodes,
            spec.gen_util,
        );
        for (job, outcome) in trace.iter().zip(&result.job_outcomes) {
            debug_assert_eq!(job.id, outcome.job);
            if !outcome.short {
                continue;
            }
            let Some(slowdown) = outcome.slowdown() else {
                continue;
            };
            if job.constraints.is_unconstrained() {
                unconstrained_sum += slowdown;
                unconstrained_count += 1;
            } else {
                for c in job.constraints.iter() {
                    sums[c.kind.index()] += slowdown;
                    counts[c.kind.index()] += 1;
                }
            }
        }
    }
    let unconstrained_mean = unconstrained_sum / unconstrained_count.max(1) as f64;

    println!(
        "== Table II slowdown column: emergent per-kind slowdowns (google, eagle-c, {} nodes) ==",
        nodes
    );
    let mut table = Table::new(vec![
        "task constraint",
        "rel. slowdown (paper)",
        "rel. slowdown (measured)",
        "jobs carrying it",
    ]);
    for kind in ConstraintKind::ALL {
        let n = counts[kind.index()];
        if n == 0 {
            continue;
        }
        let mean = sums[kind.index()] / n as f64;
        let rel = mean / unconstrained_mean.max(1e-9);
        let paper = phoenix_constraints::table_ii_row(kind)
            .map(|r| format!("{:.2}x", r.relative_slowdown))
            .unwrap_or_else(|| "-".into());
        table.add_row(vec![
            kind.to_string(),
            paper,
            format!("{rel:.2}x"),
            n.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "unconstrained short jobs: {} at mean slowdown {:.2}",
        unconstrained_count, unconstrained_mean
    );
}
