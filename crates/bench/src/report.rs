//! Shared sweep execution and table printing for the figure binaries.

use phoenix_metrics::{render_chart, Series, Table};
use phoenix_traces::TraceProfile;

use crate::args::Scale;
use crate::runner::{run_many, RunSpec, SchedulerKind};
use crate::summary::{summarize, Summary};

/// Cluster-size multipliers for the utilization sweeps of Figs. 7–11.
///
/// The paper varies the Google cluster from 15,000 to 19,000 nodes against
/// a fixed workload, dropping average utilization from ~86 % to ~43 %; the
/// same spread needs a wider factor range in our synthetic traces, so we
/// grow the cluster up to 2× while holding the workload fixed.
pub const SWEEP_FACTORS: [f64; 5] = [1.0, 1.15, 1.3, 1.6, 2.0];

/// One sweep point: every scheduler's seed-averaged summary at one cluster
/// size.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Cluster size at this point.
    pub nodes: usize,
    /// One summary per requested scheduler, in input order.
    pub summaries: Vec<Summary>,
}

/// Runs `kinds` across the [`SWEEP_FACTORS`] cluster sizes on `profile`,
/// with the workload calibrated to `gen_util` at the base size (so larger
/// clusters see proportionally lower load). All runs execute in parallel.
pub fn sweep(
    profile: &TraceProfile,
    kinds: &[SchedulerKind],
    scale: &Scale,
    gen_util: f64,
) -> Vec<SweepPoint> {
    let base = scale.nodes_for(profile);
    let seeds = scale.seed_list();
    let mut specs = Vec::new();
    for &factor in &SWEEP_FACTORS {
        let nodes = ((base as f64) * factor).round() as usize;
        for &kind in kinds {
            for &seed in &seeds {
                let mut spec = RunSpec::new(profile.clone(), kind)
                    .with_nodes(nodes)
                    .with_seed(seed);
                spec.jobs = scale.jobs;
                spec.gen_nodes = base;
                spec.gen_util = gen_util;
                spec.record_task_waits = false;
                specs.push(spec);
            }
        }
    }
    let results = run_many(&specs);
    let per_point = kinds.len() * seeds.len();
    SWEEP_FACTORS
        .iter()
        .enumerate()
        .map(|(pi, &factor)| {
            let nodes = ((base as f64) * factor).round() as usize;
            let block = &results[pi * per_point..(pi + 1) * per_point];
            let summaries = kinds
                .iter()
                .enumerate()
                .map(|(ki, _)| {
                    let runs: Vec<_> = block[ki * seeds.len()..(ki + 1) * seeds.len()].to_vec();
                    summarize(&runs)
                })
                .collect();
            SweepPoint { nodes, summaries }
        })
        .collect()
}

/// Prints a Figs. 7–11 style table: per sweep point, the percentiles of
/// `subject` (index 0) normalized to `baseline` (index 1), for the class
/// selected by `triple`.
pub fn print_normalized_sweep(
    title: &str,
    points: &[SweepPoint],
    triple: impl Fn(&Summary) -> crate::summary::PercentileTriple,
) {
    println!("== {title} ==");
    let mut table = Table::new(vec![
        "nodes",
        "avg util %",
        "norm p50",
        "norm p90",
        "norm p99",
        "subject p99 (s)",
        "baseline p99 (s)",
    ]);
    let mut p99_curve = Vec::new();
    for point in points {
        let subject = &point.summaries[0];
        let baseline = &point.summaries[1];
        let n = triple(subject).normalized_to(&triple(baseline));
        p99_curve.push((subject.utilization * 100.0, n.p99));
        table.add_row(vec![
            point.nodes.to_string(),
            format!("{:.1}", subject.utilization * 100.0),
            format!("{:.3}", n.p50),
            format!("{:.3}", n.p90),
            format!("{:.3}", n.p99),
            format!("{:.2}", triple(subject).p99),
            format!("{:.2}", triple(baseline).p99),
        ]);
    }
    println!("{table}");
    let parity: Vec<(f64, f64)> = p99_curve.iter().map(|&(u, _)| (u, 1.0)).collect();
    print!(
        "{}",
        render_chart(
            "normalized p99 vs utilization % (-: parity)",
            &[
                Series::new("normalized p99", p99_curve),
                Series::new("-", parity)
            ],
            64,
            12,
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_factor() {
        let scale = Scale {
            node_factor: 0.012,
            jobs: 300,
            seeds: 1,
            faults: phoenix_sim::FaultPlan::none(),
        };
        let points = sweep(
            &TraceProfile::yahoo(),
            &[SchedulerKind::Phoenix, SchedulerKind::EagleC],
            &scale,
            0.7,
        );
        assert_eq!(points.len(), SWEEP_FACTORS.len());
        for p in &points {
            assert_eq!(p.summaries.len(), 2);
            assert!(p.summaries[0].jobs_completed > 0);
        }
        // Larger clusters see lower utilization (fixed workload).
        assert!(points[0].summaries[1].utilization > points[4].summaries[1].utilization);
    }
}
