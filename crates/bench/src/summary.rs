//! Seed-averaged result summaries.

use std::fmt;

use phoenix_metrics::{ConstraintStatus, JobClass, LatencyKey};
use phoenix_sim::SimResult;

/// p50/p90/p99 of one latency distribution, seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PercentileTriple {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl PercentileTriple {
    /// Element-wise ratio `self / other` (the "normalized to baseline"
    /// quantity of Figs. 7–11). Zero denominators produce 0.
    pub fn normalized_to(&self, other: &PercentileTriple) -> PercentileTriple {
        let div = |a: f64, b: f64| if b == 0.0 { 0.0 } else { a / b };
        PercentileTriple {
            p50: div(self.p50, other.p50),
            p90: div(self.p90, other.p90),
            p99: div(self.p99, other.p99),
        }
    }
}

impl fmt::Display for PercentileTriple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50={:.3} p90={:.3} p99={:.3}",
            self.p50, self.p90, self.p99
        )
    }
}

/// Seed-averaged summary of a set of runs with identical specs (different
/// seeds).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Scheduler name.
    pub scheduler: String,
    /// Cluster size.
    pub nodes: usize,
    /// Measured utilization, averaged.
    pub utilization: f64,
    /// Short-job response-time percentiles.
    pub short_response: PercentileTriple,
    /// Long-job response-time percentiles.
    pub long_response: PercentileTriple,
    /// Short-job queuing-time percentiles.
    pub short_queuing: PercentileTriple,
    /// Constrained-job (all classes) queuing percentiles.
    pub constrained_queuing: PercentileTriple,
    /// Unconstrained-job (all classes) queuing percentiles.
    pub unconstrained_queuing: PercentileTriple,
    /// Constrained short-job response percentiles.
    pub constrained_short_response: PercentileTriple,
    /// Unconstrained short-job response percentiles.
    pub unconstrained_short_response: PercentileTriple,
    /// Constrained short-job queuing percentiles (Fig. 9 reports short
    /// jobs).
    pub constrained_short_queuing: PercentileTriple,
    /// Unconstrained short-job queuing percentiles.
    pub unconstrained_short_queuing: PercentileTriple,
    /// Total CRV-reordered tasks across seeds.
    pub crv_reordered_tasks: u64,
    /// Total completed jobs across seeds.
    pub jobs_completed: u64,
    /// Total failed jobs across seeds.
    pub jobs_failed: u64,
}

fn triple_of(
    result: &SimResult,
    dist: impl Fn(&SimResult) -> phoenix_metrics::Distribution,
) -> PercentileTriple {
    let mut d = dist(result);
    PercentileTriple {
        p50: d.percentile(50.0),
        p90: d.percentile(90.0),
        p99: d.percentile(99.0),
    }
}

/// Summarizes runs of one spec across seeds (percentiles averaged over
/// seeds, counters summed).
///
/// # Panics
///
/// Panics if `results` is empty.
pub fn summarize(results: &[SimResult]) -> Summary {
    assert!(!results.is_empty(), "need at least one run");
    let summaries: Vec<Summary> = results
        .iter()
        .map(|r| {
            let constrained_short = LatencyKey::new(JobClass::Short, ConstraintStatus::Constrained);
            let unconstrained_short =
                LatencyKey::new(JobClass::Short, ConstraintStatus::Unconstrained);
            Summary {
                scheduler: r.scheduler.clone(),
                nodes: r.workers,
                utilization: r.utilization(),
                short_response: triple_of(r, |r| r.metrics.job_response.by_class(JobClass::Short)),
                long_response: triple_of(r, |r| r.metrics.job_response.by_class(JobClass::Long)),
                short_queuing: triple_of(r, |r| r.metrics.job_queuing.by_class(JobClass::Short)),
                constrained_queuing: triple_of(r, |r| {
                    r.metrics
                        .job_queuing
                        .by_status(ConstraintStatus::Constrained)
                }),
                unconstrained_queuing: triple_of(r, |r| {
                    r.metrics
                        .job_queuing
                        .by_status(ConstraintStatus::Unconstrained)
                }),
                constrained_short_response: triple_of(r, |r| {
                    r.metrics.job_response.cell(constrained_short).clone()
                }),
                unconstrained_short_response: triple_of(r, |r| {
                    r.metrics.job_response.cell(unconstrained_short).clone()
                }),
                constrained_short_queuing: triple_of(r, |r| {
                    r.metrics.job_queuing.cell(constrained_short).clone()
                }),
                unconstrained_short_queuing: triple_of(r, |r| {
                    r.metrics.job_queuing.cell(unconstrained_short).clone()
                }),
                crv_reordered_tasks: r.counters.crv_reordered_tasks,
                jobs_completed: r.counters.jobs_completed,
                jobs_failed: r.counters.jobs_failed,
            }
        })
        .collect();
    average_summaries(&summaries)
}

/// Averages percentile fields across summaries (counters are summed).
///
/// # Panics
///
/// Panics if `summaries` is empty.
pub fn average_summaries(summaries: &[Summary]) -> Summary {
    assert!(!summaries.is_empty(), "need at least one summary");
    let n = summaries.len() as f64;
    let avg_triple = |get: &dyn Fn(&Summary) -> PercentileTriple| PercentileTriple {
        p50: summaries.iter().map(|s| get(s).p50).sum::<f64>() / n,
        p90: summaries.iter().map(|s| get(s).p90).sum::<f64>() / n,
        p99: summaries.iter().map(|s| get(s).p99).sum::<f64>() / n,
    };
    Summary {
        scheduler: summaries[0].scheduler.clone(),
        nodes: summaries[0].nodes,
        utilization: summaries.iter().map(|s| s.utilization).sum::<f64>() / n,
        short_response: avg_triple(&|s| s.short_response),
        long_response: avg_triple(&|s| s.long_response),
        short_queuing: avg_triple(&|s| s.short_queuing),
        constrained_queuing: avg_triple(&|s| s.constrained_queuing),
        unconstrained_queuing: avg_triple(&|s| s.unconstrained_queuing),
        constrained_short_response: avg_triple(&|s| s.constrained_short_response),
        unconstrained_short_response: avg_triple(&|s| s.unconstrained_short_response),
        constrained_short_queuing: avg_triple(&|s| s.constrained_short_queuing),
        unconstrained_short_queuing: avg_triple(&|s| s.unconstrained_short_queuing),
        crv_reordered_tasks: summaries.iter().map(|s| s.crv_reordered_tasks).sum(),
        jobs_completed: summaries.iter().map(|s| s.jobs_completed).sum(),
        jobs_failed: summaries.iter().map(|s| s.jobs_failed).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_divides_elementwise() {
        let a = PercentileTriple {
            p50: 1.0,
            p90: 4.0,
            p99: 9.0,
        };
        let b = PercentileTriple {
            p50: 2.0,
            p90: 2.0,
            p99: 3.0,
        };
        let n = a.normalized_to(&b);
        assert_eq!(n.p50, 0.5);
        assert_eq!(n.p90, 2.0);
        assert_eq!(n.p99, 3.0);
        let z = a.normalized_to(&PercentileTriple::default());
        assert_eq!(z.p99, 0.0, "zero denominator yields zero");
    }

    #[test]
    fn averaging_is_arithmetic_mean() {
        let mk = |p99: f64, crv: u64| Summary {
            scheduler: "x".into(),
            short_response: PercentileTriple {
                p99,
                ..Default::default()
            },
            crv_reordered_tasks: crv,
            ..Default::default()
        };
        let avg = average_summaries(&[mk(1.0, 2), mk(3.0, 4)]);
        assert_eq!(avg.short_response.p99, 2.0);
        assert_eq!(avg.crv_reordered_tasks, 6, "counters are summed");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_average_panics() {
        let _ = average_summaries(&[]);
    }
}
