//! Single-run and batched experiment execution.

use rand::rngs::StdRng;
use rand::SeedableRng;

use phoenix_constraints::{FeasibilityIndex, MachinePopulation};
use phoenix_core::{Phoenix, PhoenixConfig};
use phoenix_schedulers::{
    BaselineConfig, ChoosyC, EagleC, HawkC, MercuryC, MonolithicC, SparrowC, YaqD,
};
use phoenix_sim::{
    AuditConfig, FaultPlan, FederationConfig, JsonlSink, Scheduler, SimConfig, SimResult,
    Simulation,
};
use phoenix_traces::{TraceGenerator, TraceProfile};

/// The schedulers the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Phoenix (this paper).
    Phoenix,
    /// Eagle-C: the primary baseline.
    EagleC,
    /// Hawk-C.
    HawkC,
    /// Sparrow-C.
    SparrowC,
    /// Yaq-d.
    YaqD,
    /// Mercury-C: hybrid control plane with early binding.
    MercuryC,
    /// Monolithic-C: Borg/Mesos-style fully centralized early binding.
    MonolithicC,
    /// Choosy-C: constrained max-min fair centralized scheduling.
    ChoosyC,
    /// Phoenix without CRV reordering (ablation: pure Eagle-style SRPT with
    /// Phoenix's admission control).
    PhoenixNoCrv,
    /// Phoenix without admission control (ablation).
    PhoenixNoAdmission,
}

impl SchedulerKind {
    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Phoenix => "phoenix",
            SchedulerKind::EagleC => "eagle-c",
            SchedulerKind::HawkC => "hawk-c",
            SchedulerKind::SparrowC => "sparrow-c",
            SchedulerKind::YaqD => "yaq-d",
            SchedulerKind::MercuryC => "mercury-c",
            SchedulerKind::MonolithicC => "monolithic-c",
            SchedulerKind::ChoosyC => "choosy-c",
            SchedulerKind::PhoenixNoCrv => "phoenix-no-crv",
            SchedulerKind::PhoenixNoAdmission => "phoenix-no-admission",
        }
    }

    /// Looks a scheduler kind up by its [`SchedulerKind::name`].
    pub fn by_name(name: &str) -> Option<Self> {
        [
            SchedulerKind::Phoenix,
            SchedulerKind::EagleC,
            SchedulerKind::HawkC,
            SchedulerKind::SparrowC,
            SchedulerKind::YaqD,
            SchedulerKind::MercuryC,
            SchedulerKind::MonolithicC,
            SchedulerKind::ChoosyC,
            SchedulerKind::PhoenixNoCrv,
            SchedulerKind::PhoenixNoAdmission,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }

    /// Instantiates the scheduler for a trace with the given short/long
    /// cutoff (seconds).
    pub fn build(self, cutoff_s: f64) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Phoenix => {
                Box::new(Phoenix::new(PhoenixConfig::with_cutoff_s(cutoff_s)))
            }
            SchedulerKind::EagleC => Box::new(EagleC::new(BaselineConfig::with_cutoff_s(cutoff_s))),
            SchedulerKind::HawkC => Box::new(HawkC::new(BaselineConfig::with_cutoff_s(cutoff_s))),
            SchedulerKind::SparrowC => {
                Box::new(SparrowC::new(BaselineConfig::with_cutoff_s(cutoff_s)))
            }
            SchedulerKind::YaqD => Box::new(YaqD::new(BaselineConfig::with_cutoff_s(cutoff_s))),
            SchedulerKind::MercuryC => {
                Box::new(MercuryC::new(BaselineConfig::with_cutoff_s(cutoff_s)))
            }
            SchedulerKind::MonolithicC => {
                Box::new(MonolithicC::new(BaselineConfig::with_cutoff_s(cutoff_s)))
            }
            SchedulerKind::ChoosyC => {
                Box::new(ChoosyC::new(BaselineConfig::with_cutoff_s(cutoff_s)))
            }
            SchedulerKind::PhoenixNoCrv => {
                let mut config = PhoenixConfig::with_cutoff_s(cutoff_s);
                config.crv_reordering = false;
                Box::new(Phoenix::new(config))
            }
            SchedulerKind::PhoenixNoAdmission => {
                let mut config = PhoenixConfig::with_cutoff_s(cutoff_s);
                config.admission_control = false;
                Box::new(Phoenix::new(config))
            }
        }
    }
}

/// One deterministic simulation run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Trace profile (Google / Cloudera / Yahoo).
    pub profile: TraceProfile,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Cluster size the run executes on.
    pub nodes: usize,
    /// Number of jobs in the trace.
    pub jobs: usize,
    /// Cluster size the trace's load was calibrated for (the sweep varies
    /// `nodes` against a fixed workload, like the paper).
    pub gen_nodes: usize,
    /// Target utilization at `gen_nodes`.
    pub gen_util: f64,
    /// RNG seed (cluster, trace and scheduler randomness all derive from
    /// it).
    pub seed: u64,
    /// Trace-generation seed override. `None` draws the workload from
    /// `seed`, which makes a smaller job count a *strict prefix* of a
    /// larger one (the generator is a single sequential stream) — useful
    /// for debugging, misleading for scale ladders, where every row would
    /// share its early critical path. Benchmarks sweeping `jobs` set this
    /// per row to decorrelate the samples.
    pub gen_seed: Option<u64>,
    /// Record per-task wait samples (heavier; needed for CDF figures).
    pub record_task_waits: bool,
    /// Fault profile injected into the run ([`FaultPlan::none`] for the
    /// paper's fault-free experiments).
    pub faults: FaultPlan,
    /// Federation layout ([`FederationConfig::off`] for the centralized
    /// engine; `K = 1` with zero staleness is digest-identical to it).
    pub federation: FederationConfig,
    /// Write a JSONL event trace of the run to this path (`--trace-out`).
    /// Tracing is observational only: the run's digest is unchanged.
    pub trace_out: Option<std::path::PathBuf>,
    /// Profile engine hot paths, returning the wall-clock table in
    /// [`SimResult::profile`] (`--profile`).
    pub profile_hot_paths: bool,
    /// Run under the invariant auditor, returning the report in
    /// [`SimResult::audit`] (`--audit`; also forced by the `PHOENIX_AUDIT`
    /// environment variable). Observational only: the digest is unchanged.
    pub audit: bool,
}

impl RunSpec {
    /// A spec running `scheduler` on `profile` at the profile-default
    /// cluster scale.
    pub fn new(profile: TraceProfile, scheduler: SchedulerKind) -> Self {
        let nodes = profile.default_nodes;
        RunSpec {
            profile,
            scheduler,
            nodes,
            jobs: 10_000,
            gen_nodes: nodes,
            gen_util: 0.9,
            seed: 1,
            gen_seed: None,
            record_task_waits: true,
            faults: FaultPlan::none(),
            federation: FederationConfig::off(),
            trace_out: None,
            profile_hot_paths: false,
            audit: false,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy running on a different cluster size (workload
    /// unchanged).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Returns a copy with a different scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy with a different fault profile.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns a copy with a different federation layout.
    pub fn with_federation(mut self, federation: FederationConfig) -> Self {
        self.federation = federation;
        self
    }

    /// Returns a copy writing a JSONL event trace to `path`.
    pub fn with_trace_out(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.trace_out = Some(path.into());
        self
    }

    /// Returns a copy with hot-path profiling enabled.
    pub fn with_profiling(mut self) -> Self {
        self.profile_hot_paths = true;
        self
    }

    /// Returns a copy running under the invariant auditor.
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }
}

/// Wall-clock breakdown of one [`run_spec_timed`] execution, in seconds.
///
/// Generation and simulation are timed separately so the scale benchmark
/// (`--bin scale`) can attribute end-to-end cost; none of this feeds the
/// simulation itself, which stays deterministic in the seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTiming {
    /// Generating the machine population.
    pub cluster_gen_s: f64,
    /// Generating the job trace.
    pub trace_gen_s: f64,
    /// Building the posting-list feasibility index over the cluster.
    pub index_build_s: f64,
    /// Executing the simulation.
    pub sim_s: f64,
}

impl RunTiming {
    /// End-to-end seconds (generation + index build + simulation).
    pub fn total_s(&self) -> f64 {
        self.cluster_gen_s + self.trace_gen_s + self.index_build_s + self.sim_s
    }
}

/// Executes one run: generates the cluster and trace, simulates, returns
/// the result.
pub fn run_spec(spec: &RunSpec) -> SimResult {
    run_spec_timed(spec).0
}

/// [`run_spec`] with a wall-clock breakdown of the phases.
pub fn run_spec_timed(spec: &RunSpec) -> (SimResult, RunTiming) {
    let mut timing = RunTiming::default();
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
    let started = std::time::Instant::now();
    let cluster =
        MachinePopulation::generate(spec.profile.population.clone(), spec.nodes, &mut rng);
    timing.cluster_gen_s = started.elapsed().as_secs_f64();
    let started = std::time::Instant::now();
    let trace = TraceGenerator::new(spec.profile.clone(), spec.gen_seed.unwrap_or(spec.seed))
        .generate(spec.jobs, spec.gen_nodes, spec.gen_util);
    timing.trace_gen_s = started.elapsed().as_secs_f64();
    let cutoff = spec.profile.short_cutoff_s();
    let config = SimConfig {
        record_task_waits: spec.record_task_waits,
        faults: spec.faults,
        federation: spec.federation,
        ..SimConfig::default()
    };
    let started = std::time::Instant::now();
    let index = FeasibilityIndex::new(cluster.into_machines());
    timing.index_build_s = started.elapsed().as_secs_f64();
    let mut sim = Simulation::new(
        config,
        index,
        &trace,
        spec.scheduler.build(cutoff),
        spec.seed,
    );
    if let Some(path) = &spec.trace_out {
        let sink = JsonlSink::create(path)
            .unwrap_or_else(|e| panic!("cannot create trace output {}: {e}", path.display()));
        sim.set_trace_sink(Box::new(sink));
    }
    if spec.profile_hot_paths {
        sim.enable_profiling();
    }
    // Audit goes last: it tees whatever trace sink is attached by now.
    if spec.audit || std::env::var_os("PHOENIX_AUDIT").is_some() {
        sim.enable_audit(AuditConfig::default());
    }
    let started = std::time::Instant::now();
    let result = sim.run();
    timing.sim_s = started.elapsed().as_secs_f64();
    (result, timing)
}

/// Executes a batch of runs across `threads` worker threads (a scoped
/// work-stealing pool over an atomic cursor), preserving input order in
/// the output and returning the per-run wall-clock breakdowns.
///
/// Every run is fully deterministic in its spec, so results — digests
/// included — are byte-identical whatever the thread count or
/// interleaving; only the wall-clock timings vary. `threads` is clamped to
/// `[1, specs.len()]`; one thread degenerates to a plain sequential loop
/// with no pool overhead.
pub fn run_specs_parallel(specs: &[RunSpec], threads: usize) -> Vec<(SimResult, RunTiming)> {
    let threads = threads.clamp(1, specs.len().max(1));
    if threads == 1 {
        return specs.iter().map(run_spec_timed).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<(SimResult, RunTiming)>>> =
        specs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= specs.len() {
                    return;
                }
                let result = run_spec_timed(&specs[i]);
                *results[i].lock().expect("no poisoned locks") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned locks")
                .expect("every slot filled")
        })
        .collect()
}

/// Builds the full cross product of scenarios — every profile × scheduler
/// × seed — applying `configure` to each spec (set `jobs`, `nodes`,
/// faults, ... there). Feed the result to [`run_specs_parallel`]; output
/// order is profiles-major, then schedulers, then seeds.
pub fn scenario_matrix(
    profiles: &[TraceProfile],
    schedulers: &[SchedulerKind],
    seeds: &[u64],
    mut configure: impl FnMut(&mut RunSpec),
) -> Vec<RunSpec> {
    let mut specs = Vec::with_capacity(profiles.len() * schedulers.len() * seeds.len());
    for profile in profiles {
        for &scheduler in schedulers {
            for &seed in seeds {
                let mut spec = RunSpec::new(profile.clone(), scheduler).with_seed(seed);
                configure(&mut spec);
                specs.push(spec);
            }
        }
    }
    specs
}

/// Executes a batch of runs in parallel (bounded by available CPU cores),
/// preserving input order in the output.
pub fn run_many(specs: &[RunSpec]) -> Vec<SimResult> {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    run_specs_parallel(specs, parallelism)
        .into_iter()
        .map(|(result, _)| result)
        .collect()
}

/// Executes `spec` once per seed, in parallel, preserving seed order.
///
/// This is the multi-seed confidence-interval path used by the headline
/// tables: each run is fully deterministic in its seed, so the batch is
/// reproducible regardless of thread interleaving.
pub fn run_seeds(spec: &RunSpec, seeds: &[u64]) -> Vec<SimResult> {
    let specs: Vec<RunSpec> = seeds.iter().map(|&s| spec.clone().with_seed(s)).collect();
    run_many(&specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(kind: SchedulerKind) -> RunSpec {
        let mut spec = RunSpec::new(TraceProfile::yahoo(), kind);
        spec.nodes = 60;
        spec.gen_nodes = 60;
        spec.jobs = 150;
        spec.gen_util = 0.6;
        spec
    }

    #[test]
    fn every_scheduler_kind_runs() {
        for kind in [
            SchedulerKind::Phoenix,
            SchedulerKind::EagleC,
            SchedulerKind::HawkC,
            SchedulerKind::SparrowC,
            SchedulerKind::YaqD,
            SchedulerKind::MercuryC,
            SchedulerKind::MonolithicC,
            SchedulerKind::ChoosyC,
            SchedulerKind::PhoenixNoCrv,
            SchedulerKind::PhoenixNoAdmission,
        ] {
            let result = run_spec(&tiny_spec(kind));
            assert_eq!(result.incomplete_jobs, 0, "{}", kind.name());
            // Ablation kinds run the base policy (which reports its own
            // name); plain kinds match exactly.
            assert!(
                kind.name().starts_with(&result.scheduler),
                "{} vs {}",
                kind.name(),
                result.scheduler
            );
        }
    }

    #[test]
    fn parallel_matrix_matches_sequential_digests() {
        // A seeds × schedulers matrix run on several threads must produce
        // byte-identical digests, in the same order, as one thread.
        let specs = scenario_matrix(
            &[TraceProfile::yahoo()],
            &[SchedulerKind::Phoenix, SchedulerKind::EagleC],
            &[2, 7],
            |spec| {
                spec.nodes = 60;
                spec.gen_nodes = 60;
                spec.jobs = 150;
                spec.gen_util = 0.6;
            },
        );
        assert_eq!(specs.len(), 4);
        let sequential = run_specs_parallel(&specs, 1);
        let parallel = run_specs_parallel(&specs, 3);
        assert_eq!(sequential.len(), parallel.len());
        for ((a, _), (b, _)) in sequential.iter().zip(parallel.iter()) {
            assert_eq!(a.digest(), b.digest(), "thread count must not leak in");
        }
    }

    #[test]
    fn run_seeds_matches_sequential_per_seed_runs() {
        let spec = tiny_spec(SchedulerKind::Phoenix);
        let seeds = [2u64, 7, 11];
        let batch = run_seeds(&spec, &seeds);
        assert_eq!(batch.len(), seeds.len());
        for (&seed, got) in seeds.iter().zip(&batch) {
            let sequential = run_spec(&spec.clone().with_seed(seed));
            assert_eq!(sequential.counters, got.counters, "seed {seed}");
            assert_eq!(
                sequential.metrics.makespan, got.metrics.makespan,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let specs: Vec<RunSpec> = (0..4)
            .map(|s| tiny_spec(SchedulerKind::EagleC).with_seed(s))
            .collect();
        let parallel = run_many(&specs);
        for (spec, got) in specs.iter().zip(&parallel) {
            let sequential = run_spec(spec);
            assert_eq!(sequential.counters, got.counters, "seed {}", spec.seed);
        }
    }
}
