//! Minimal command-line scaling for the experiment binaries.

use phoenix_sim::FaultPlan;
use phoenix_traces::TraceProfile;

/// Experiment scale: translates the paper's absolute cluster sizes into
/// tractable run sizes while preserving utilization (the driver of every
/// result).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Multiplier applied to each trace profile's paper-scale node count.
    pub node_factor: f64,
    /// Jobs per run.
    pub jobs: usize,
    /// Seeds per data point (the paper averages five runs).
    pub seeds: u64,
    /// Fault profile injected into every run (`FaultPlan::none()` unless
    /// `--faults reference|heavy` is given).
    pub faults: FaultPlan,
}

impl Scale {
    /// Quick scale: 1/10 of the paper's cluster sizes, 3 seeds. A full
    /// figure regenerates in minutes on a laptop. Below ~1/10 scale the
    /// rarest constraint classes shrink to a couple of machines and their
    /// queueing behaviour stops being representative.
    pub fn quick() -> Self {
        Scale {
            node_factor: 0.1,
            jobs: 20_000,
            seeds: 3,
            faults: FaultPlan::none(),
        }
    }

    /// Smoke scale for tests/benches: small but exercising every code path.
    pub fn smoke() -> Self {
        Scale {
            node_factor: 0.06,
            jobs: 3_000,
            seeds: 1,
            faults: FaultPlan::none(),
        }
    }

    /// Full scale: 1/3 of the paper's node counts, 5 seeds (15,000-node
    /// runs at factor 1.0 work but take hours for the full sweep set).
    pub fn full() -> Self {
        Scale {
            node_factor: 0.33,
            jobs: 100_000,
            seeds: 5,
            faults: FaultPlan::none(),
        }
    }

    /// Parses `--scale quick|smoke|full` (and optional `--seeds N`,
    /// `--jobs N`, `--faults none|reference|heavy`) from the process
    /// arguments; defaults to quick, fault-free.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Scale::quick();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    scale = match args[i + 1].as_str() {
                        "full" => Scale::full(),
                        "smoke" => Scale::smoke(),
                        _ => Scale::quick(),
                    };
                    i += 1;
                }
                "--seeds" if i + 1 < args.len() => {
                    if let Ok(n) = args[i + 1].parse() {
                        scale.seeds = n;
                    }
                    i += 1;
                }
                "--jobs" if i + 1 < args.len() => {
                    if let Ok(n) = args[i + 1].parse() {
                        scale.jobs = n;
                    }
                    i += 1;
                }
                "--faults" if i + 1 < args.len() => {
                    if let Some(plan) = FaultPlan::by_name(args[i + 1].as_str()) {
                        scale.faults = plan;
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }

    /// The scaled node count for a trace profile.
    pub fn nodes_for(&self, profile: &TraceProfile) -> usize {
        ((profile.default_nodes as f64) * self.node_factor).round() as usize
    }

    /// Seed values for one data point.
    pub fn seed_list(&self) -> Vec<u64> {
        (1..=self.seeds).collect()
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::quick()
    }
}

/// Observability flags (`--trace-out <path>`, `--profile`, `--audit`) for
/// the bench binaries. Parsed separately from [`Scale`] so the scale
/// presets stay `Copy`-able plain data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObserveArgs {
    /// Write a JSONL event trace of the run to this path.
    pub trace_out: Option<std::path::PathBuf>,
    /// Print the wall-clock hot-path profile table after the run.
    pub profile: bool,
    /// Run under the invariant auditor and print its report after the run.
    pub audit: bool,
}

impl ObserveArgs {
    /// Parses `--trace-out <path>`, `--profile` and `--audit` from the
    /// process arguments.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses the flags from an explicit argument stream (testable).
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let args: Vec<String> = args.collect();
        let mut observe = ObserveArgs::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trace-out" if i + 1 < args.len() => {
                    observe.trace_out = Some(std::path::PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--profile" => observe.profile = true,
                "--audit" => observe.audit = true,
                _ => {}
            }
            i += 1;
        }
        observe
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_nodes_follow_profile() {
        let s = Scale::quick();
        assert_eq!(s.nodes_for(&TraceProfile::google()), 1_500);
        assert_eq!(s.nodes_for(&TraceProfile::yahoo()), 500);
    }

    #[test]
    fn seed_list_has_requested_length() {
        assert_eq!(Scale::full().seed_list().len(), 5);
        assert_eq!(Scale::smoke().seed_list(), vec![1]);
    }

    #[test]
    fn observe_args_parse_flags() {
        let o = ObserveArgs::parse(
            [
                "--trace-out",
                "/tmp/t.jsonl",
                "--profile",
                "--audit",
                "--scale",
                "smoke",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(
            o.trace_out.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
        assert!(o.profile);
        assert!(o.audit);
        let none = ObserveArgs::parse(["--scale", "quick"].iter().map(|s| s.to_string()));
        assert_eq!(none, ObserveArgs::default());
    }

    #[test]
    fn presets_are_ordered_by_size() {
        let (s, q, f) = (Scale::smoke(), Scale::quick(), Scale::full());
        assert!(s.node_factor < q.node_factor && q.node_factor < f.node_factor);
        assert!(s.jobs < q.jobs && q.jobs < f.jobs);
        assert!(s.seeds <= q.seeds && q.seeds <= f.seeds);
    }
}
