//! Microbenchmarks of the substrate hot paths: event engine throughput,
//! feasibility sampling, constraint matching, CRV monitor refresh, and the
//! P-K estimator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use phoenix_bench::{run_spec, RunSpec, SchedulerKind};
use phoenix_constraints::{
    Constraint, ConstraintExpr, ConstraintKind, ConstraintModel, ConstraintOp, ConstraintSet,
    FeasibilityIndex, MachinePopulation, PopulationProfile, VectorDemand,
};
use phoenix_core::{CrvMonitor, WaitEstimator};
use phoenix_sim::{Probe, ProbeId, SimDuration, SimTime, WorkerId};
use phoenix_traces::TraceProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let mut spec = RunSpec::new(TraceProfile::yahoo(), SchedulerKind::SparrowC);
    spec.nodes = 100;
    spec.gen_nodes = 100;
    spec.jobs = 1_000;
    spec.gen_util = 0.7;
    spec.record_task_waits = false;
    // Pre-measure the task count so throughput is per task.
    let tasks = run_spec(&spec).counters.tasks_completed;
    group.throughput(Throughput::Elements(tasks));
    group.sample_size(10);
    group.bench_function("sparrow_1k_jobs_100_nodes", |b| {
        b.iter(|| black_box(run_spec(black_box(&spec)).counters.tasks_completed));
    });
    group.finish();
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasibility");
    let mut rng = StdRng::seed_from_u64(1);
    let population =
        MachinePopulation::generate(PopulationProfile::google_like(), 15_000, &mut rng);
    let machines = population.into_machines();
    let index = FeasibilityIndex::new(machines.clone());
    let model = ConstraintModel::google();
    let sets: Vec<_> = (0..64).map(|_| model.synthesize_set(&mut rng)).collect();
    // Warm the cache as a scheduler would.
    for set in &sets {
        let _ = index.feasible(set);
    }
    // The most selective warmed set: sampling has to fall through the
    // rejection phase into the exact phase almost every time.
    let selective = sets
        .iter()
        .min_by_key(|s| index.count_feasible(s))
        .expect("non-empty set pool")
        .clone();
    group.bench_function("sample_feasible_2_of_15k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(index.sample_feasible(&sets[i], 2, &mut rng, |_| false))
        });
    });
    group.bench_function("sample_feasible_selective_15k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(index.sample_feasible(&selective, 4, &mut rng, |w| w % 2 == 0)));
    });
    // Cold-set cost, naive scan vs the posting-list index. Both benches
    // consume the same seeded stream of freshly synthesized sets, so the
    // ratio between them is the structural speedup (acceptance bar: ≥5×).
    group.bench_function("cold_set_naive_scan_15k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let fresh = model.synthesize_set(&mut rng);
            black_box(machines.iter().filter(|m| fresh.satisfied_by(m)).count())
        });
    });
    group.bench_function("cold_set_index_15k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let fresh = model.synthesize_set(&mut rng);
            // Uncached: every iteration pays the full bitset intersection,
            // never a memo hit (synthesized sets repeat eventually).
            black_box(index.count_feasible_uncached(&fresh))
        });
    });
    group.bench_function("cached_hit_15k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % sets.len();
            black_box(index.feasible(&sets[i]).len())
        });
    });
    group.finish();
}

fn bench_feasibility_expr(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasibility_expr");
    let mut rng = StdRng::seed_from_u64(1);
    let population =
        MachinePopulation::generate(PopulationProfile::google_like(), 15_000, &mut rng);
    let index = FeasibilityIndex::new(population.into_machines());
    // The depth-3 shape the yahoo-expr3 workload family draws:
    // All(Any(leaf, leaf), Not(leaf), vector) — an OR plan, an AND-NOT
    // plan and a multi-dimension vector fold under one intersection.
    let depth3 = ConstraintSet::from_expr(ConstraintExpr::all_of(vec![
        ConstraintExpr::any_of(vec![
            ConstraintExpr::leaf(Constraint::hard(
                ConstraintKind::Architecture,
                ConstraintOp::Eq,
                0,
            )),
            ConstraintExpr::leaf(Constraint::hard(
                ConstraintKind::PlatformFamily,
                ConstraintOp::Eq,
                1,
            )),
        ]),
        ConstraintExpr::not(ConstraintExpr::leaf(Constraint::hard(
            ConstraintKind::Architecture,
            ConstraintOp::Eq,
            2,
        ))),
        ConstraintExpr::vector(VectorDemand {
            cores: 8,
            memory_gb: 16,
            ..VectorDemand::default()
        }),
    ]));
    // The flat conjunction with the same leaf count: the acceptance bar
    // is cold expression cost within 10x of this (EXPERIMENTS.md).
    let flat = ConstraintSet::from_constraints(vec![
        Constraint::hard(ConstraintKind::Architecture, ConstraintOp::Eq, 0),
        Constraint::hard(ConstraintKind::PlatformFamily, ConstraintOp::Eq, 1),
        Constraint::hard(ConstraintKind::NumCores, ConstraintOp::Gt, 7),
        Constraint::hard(ConstraintKind::Memory, ConstraintOp::Gt, 15),
    ]);
    group.bench_function("cold_depth3_expr_15k", |b| {
        b.iter(|| black_box(index.count_feasible_uncached(black_box(&depth3))));
    });
    group.bench_function("cold_flat_and_15k", |b| {
        b.iter(|| black_box(index.count_feasible_uncached(black_box(&flat))));
    });
    group.finish();
}

fn bench_crv_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("crv_monitor");
    group.sample_size(20);
    // A mid-run state with populated queues: run a hot simulation and keep
    // its final state shape by rebuilding queues via a fresh sim.
    let mut spec = RunSpec::new(TraceProfile::google(), SchedulerKind::Phoenix);
    spec.nodes = 1_000;
    spec.gen_nodes = 1_000;
    spec.jobs = 3_000;
    spec.gen_util = 0.92;
    spec.record_task_waits = false;
    group.bench_function("refresh_1k_workers_via_run", |b| {
        b.iter(|| {
            // End-to-end: the run itself performs a monitor refresh every
            // 9 simulated seconds.
            black_box(run_spec(black_box(&spec)).counters.crv_reordered_tasks)
        });
    });
    group.finish();
}

/// Heartbeat cost at 5,000 workers with populated queues: the historical
/// full-cluster rescan vs the O(kinds) incremental-ledger refresh (the
/// acceptance bar is ≥5× in the incremental path's favor).
fn bench_monitor_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_refresh");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(5);
    let cluster = MachinePopulation::generate(PopulationProfile::google_like(), 5_000, &mut rng);
    let trace =
        phoenix_traces::TraceGenerator::new(TraceProfile::google(), 1).generate(500, 5_000, 0.9);
    let mut state = phoenix_sim::Simulation::new(
        phoenix_sim::SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &trace,
        Box::new(phoenix_sim::RandomScheduler::new(2)),
        1,
    )
    .into_state_for_tests();
    // Non-trivial queue depth: four queued probes per worker, spread over
    // the generated (constrained) jobs, via the ledger-aware API.
    let n_jobs = state.jobs.len() as u64;
    for i in 0..20_000u64 {
        let probe = Probe {
            id: ProbeId(i),
            job: phoenix_traces::JobId((i % n_jobs) as u32),
            bound_duration_us: None,
            est_duration_us: state.jobs[(i % n_jobs) as usize].estimated_task_us,
            slowdown: 1.0,
            enqueued_at: SimTime::ZERO,
            bypass_count: 0,
            migrations: 0,
            retries: 0,
        };
        state.enqueue_probe(WorkerId((i % 5_000) as u32), probe);
    }
    let mut monitor = CrvMonitor::new();
    group.bench_function("full_rescan_5k_workers_20k_probes", |b| {
        b.iter(|| {
            monitor.refresh_full_rescan(black_box(&state));
            black_box(monitor.max_ratio())
        });
    });
    group.bench_function("incremental_5k_workers_20k_probes", |b| {
        b.iter(|| {
            monitor.refresh_incremental(black_box(&state));
            black_box(monitor.max_ratio())
        });
    });
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("pk_estimator");
    group.bench_function("record_and_estimate", |b| {
        let mut est = WaitEstimator::new(1_000);
        let mut t = SimTime::ZERO;
        let mut i = 0u32;
        b.iter(|| {
            let w = WorkerId(i % 1_000);
            est.record_arrival(w, t);
            est.record_service(w, SimDuration::from_millis(500));
            t += SimDuration::from_millis(1);
            i = i.wrapping_add(1);
            black_box(est.expected_wait(w))
        });
    });
    group.finish();
}

criterion_group!(
    micro,
    bench_engine_throughput,
    bench_feasibility,
    bench_feasibility_expr,
    bench_crv_monitor,
    bench_monitor_refresh,
    bench_estimator,
);
criterion_main!(micro);
