//! Criterion benches regenerating each paper table/figure at smoke scale.
//!
//! One bench per table/figure of the evaluation. Each runs a miniature
//! version of the corresponding experiment end to end (trace generation +
//! simulation + metric extraction), so `cargo bench` both times the system
//! and re-exercises every experiment pipeline. The printed paper-scale
//! numbers come from the `fig*`/`table*` binaries instead.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phoenix_bench::{run_spec, RunSpec, Scale, SchedulerKind};
use phoenix_constraints::{
    supply_curve, ConstraintModel, ConstraintStats, MachinePopulation, PopulationProfile,
};
use phoenix_traces::{TraceGenerator, TraceProfile, TraceStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke_spec(profile: TraceProfile, kind: SchedulerKind, util: f64) -> RunSpec {
    let scale = Scale::smoke();
    let nodes = scale.nodes_for(&profile).max(40);
    let mut spec = RunSpec::new(profile, kind);
    spec.nodes = nodes;
    spec.gen_nodes = nodes;
    spec.gen_util = util;
    spec.jobs = scale.jobs;
    spec.record_task_waits = false;
    spec
}

/// Fig. 2: queuing CDFs for Hawk-C / Eagle-C / Yaq-d on Yahoo.
fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_queueing_cdf");
    group.sample_size(10);
    for kind in [
        SchedulerKind::HawkC,
        SchedulerKind::EagleC,
        SchedulerKind::YaqD,
    ] {
        group.bench_function(kind.name(), |b| {
            let spec = smoke_spec(TraceProfile::yahoo(), kind, 0.9);
            b.iter(|| {
                let r = run_spec(black_box(&spec));
                black_box(r.metrics.job_queuing.overall().mean())
            });
        });
    }
    group.finish();
}

/// Fig. 3: constrained vs unconstrained wait time series under Eagle-C.
fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_wait_timeseries");
    group.sample_size(10);
    group.bench_function("google_eagle_c", |b| {
        let spec = smoke_spec(TraceProfile::google(), SchedulerKind::EagleC, 0.9);
        b.iter(|| {
            let r = run_spec(black_box(&spec));
            black_box(r.metrics.constrained_wait_series.bucket_means().len())
        });
    });
    group.finish();
}

/// Fig. 4: constrained/unconstrained short-job response ratio per trace.
fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_constrained_ratio");
    group.sample_size(10);
    for profile in TraceProfile::all() {
        group.bench_function(profile.name, |b| {
            let spec = smoke_spec(profile.clone(), SchedulerKind::EagleC, 0.9);
            b.iter(|| black_box(run_spec(black_box(&spec)).counters));
        });
    }
    group.finish();
}

/// Fig. 6: synthesizer demand and supply curves.
fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_supply_demand");
    group.bench_function("demand_curve_10k", |b| {
        let model = ConstraintModel::google();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut stats = ConstraintStats::new();
            for _ in 0..10_000 {
                stats.record(&model.synthesize_set(&mut rng));
            }
            black_box(stats.demand_curve())
        });
    });
    group.bench_function("supply_curve_1k_nodes", |b| {
        let model = ConstraintModel::google();
        let mut rng = StdRng::seed_from_u64(2);
        let population =
            MachinePopulation::generate(PopulationProfile::google_like(), 1_000, &mut rng);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(supply_curve(&model, &population, 2_000, &mut rng))
        });
    });
    group.finish();
}

/// Figs. 7/8: Phoenix vs Eagle-C (short and long jobs share the runs).
fn bench_fig7_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_fig8_phoenix_vs_eagle");
    group.sample_size(10);
    for kind in [SchedulerKind::Phoenix, SchedulerKind::EagleC] {
        group.bench_function(kind.name(), |b| {
            let spec = smoke_spec(TraceProfile::google(), kind, 0.92);
            b.iter(|| {
                let r = run_spec(black_box(&spec));
                black_box((
                    r.class_response_percentile(phoenix_metrics::JobClass::Short, 99.0),
                    r.class_response_percentile(phoenix_metrics::JobClass::Long, 99.0),
                ))
            });
        });
    }
    group.finish();
}

/// Fig. 9: queuing-delay breakdown by constraint status.
fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_queueing_breakdown");
    group.sample_size(10);
    group.bench_function("phoenix_google", |b| {
        let spec = smoke_spec(TraceProfile::google(), SchedulerKind::Phoenix, 0.92);
        b.iter(|| {
            let r = run_spec(black_box(&spec));
            black_box(
                r.metrics
                    .job_queuing
                    .by_status(phoenix_metrics::ConstraintStatus::Constrained)
                    .mean(),
            )
        });
    });
    group.finish();
}

/// Fig. 10: Phoenix vs Hawk-C.
fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_phoenix_vs_hawk");
    group.sample_size(10);
    group.bench_function("hawk_c_google", |b| {
        let spec = smoke_spec(TraceProfile::google(), SchedulerKind::HawkC, 0.92);
        b.iter(|| black_box(run_spec(black_box(&spec)).counters));
    });
    group.finish();
}

/// Fig. 11: Phoenix vs Sparrow-C.
fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_phoenix_vs_sparrow");
    group.sample_size(10);
    group.bench_function("sparrow_c_google", |b| {
        let spec = smoke_spec(TraceProfile::google(), SchedulerKind::SparrowC, 0.92);
        b.iter(|| black_box(run_spec(black_box(&spec)).counters));
    });
    group.finish();
}

/// Table II: constraint synthesis throughput.
fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_constraint_synthesis");
    group.bench_function("maybe_synthesize", |b| {
        let model = ConstraintModel::google();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(model.maybe_synthesize(&mut rng)));
    });
    group.finish();
}

/// Table III: trace generation + statistics.
fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_trace_stats");
    group.sample_size(10);
    group.bench_function("generate_and_measure_google", |b| {
        b.iter(|| {
            let trace = TraceGenerator::new(TraceProfile::google(), 1).generate(2_000, 300, 0.92);
            black_box(TraceStats::measure(&trace, 10.0))
        });
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig6,
    bench_fig7_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_table2,
    bench_table3,
);
criterion_main!(figures);
