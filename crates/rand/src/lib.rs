//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace ships the small, fully deterministic subset of the
//! `rand 0.9` API the Phoenix reproduction actually uses:
//!
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded via SplitMix64.
//! * [`SeedableRng::seed_from_u64`] — the only seeding path the repo uses.
//! * [`Rng::random`] / [`Rng::random_range`] / [`Rng::random_bool`].
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The streams differ from upstream `rand`'s ChaCha12-based `StdRng`, so
//! absolute numbers in regenerated `results/*.txt` shift versus runs made
//! with the real crate; determinism (same seed → same stream) is fully
//! preserved, which is what every test and experiment relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution: `[0, 1)` for floats, the full domain for integers).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types with uniform sampling over a half-open `a..b` range.
pub trait SampleUniform: Sized {
    /// Draws one value from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let width = (high as u128).wrapping_sub(low as u128) as u64;
                // Lemire-style widening multiply; bias is < 2^-64 per draw.
                let offset = ((u128::from(rng.next_u64()) * u128::from(width)) >> 64) as u64;
                low.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let u = f64::sample(rng);
        low + u * (high - low)
    }
}

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state-initialized with SplitMix64.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` — see the crate
    /// docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude`-style convenience re-exports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.random_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = rng.random_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.random_range(3u32..3);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "{hits}");
    }
}
