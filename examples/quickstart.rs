//! Quickstart: simulate one Google-like workload under Phoenix and print
//! the headline latency numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use phoenix::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Pick a trace profile. The three profiles (google/cloudera/yahoo)
    //    carry the published workload statistics of the paper's traces.
    let profile = TraceProfile::google();

    // 2. Generate a heterogeneous cluster with that profile's machine mix.
    let nodes = 400;
    let mut rng = StdRng::seed_from_u64(7);
    let cluster = MachinePopulation::generate(profile.population.clone(), nodes, &mut rng);
    println!("cluster: {nodes} workers ({} distinct racks)", {
        let mut racks: Vec<u32> = cluster.machines().iter().map(|m| m.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    });

    // 3. Synthesize a trace: 4,000 jobs at ~85 % offered utilization.
    let trace = TraceGenerator::new(profile.clone(), 7).generate(4_000, nodes, 0.85);
    let stats = TraceStats::measure(&trace, 10.0);
    println!("{stats}\n");

    // 4. Run Phoenix.
    let config = PhoenixConfig::with_cutoff_s(profile.short_cutoff_s());
    let result = Simulation::new(
        SimConfig::default(),
        FeasibilityIndex::new(cluster.into_machines()),
        &trace,
        Box::new(Phoenix::new(config)),
        7,
    )
    .run();

    // 5. Report.
    println!("{result}");
    println!(
        "short jobs:  p50 {:>8.1}s  p90 {:>8.1}s  p99 {:>8.1}s",
        result.class_response_percentile(JobClass::Short, 50.0),
        result.class_response_percentile(JobClass::Short, 90.0),
        result.class_response_percentile(JobClass::Short, 99.0),
    );
    println!(
        "long jobs:   p50 {:>8.1}s  p90 {:>8.1}s  p99 {:>8.1}s",
        result.class_response_percentile(JobClass::Long, 50.0),
        result.class_response_percentile(JobClass::Long, 90.0),
        result.class_response_percentile(JobClass::Long, 99.0),
    );
    println!(
        "CRV reordered {} tasks, migrated {} probes, relaxed {} tasks",
        result.counters.crv_reordered_tasks,
        result.counters.migrated_probes,
        result.counters.relaxed_tasks,
    );
}
