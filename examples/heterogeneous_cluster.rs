//! Heterogeneous cluster explorer: generate a cluster and a constrained
//! workload, then inspect the supply/demand structure the CRV monitor sees
//! — which machine classes exist, how contended each constraint kind is,
//! and what the admission controller would negotiate.
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use phoenix::constraints::{supply_curve, ConstraintStats, CrvTable};
use phoenix::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let population = MachinePopulation::generate(PopulationProfile::google_like(), 5_000, &mut rng);
    let model = ConstraintModel::google();

    // --- Supply side: what the cluster offers ---------------------------
    println!("== machine population (5,000 workers, google mix) ==");
    for isa in Isa::ALL {
        let n = population
            .machines()
            .iter()
            .filter(|m| m.isa == isa)
            .count();
        println!(
            "  {isa:>6}: {n:>5} machines ({:.1}%)",
            100.0 * n as f64 / 5_000.0
        );
    }

    // --- Demand side: what jobs ask for ---------------------------------
    let mut stats = ConstraintStats::new();
    for _ in 0..50_000 {
        stats.record(&model.maybe_synthesize(&mut rng));
    }
    println!("\n== constraint demand (50,000 synthesized jobs) ==");
    println!(
        "  constrained: {:.1}% of jobs",
        stats.constrained_fraction() * 100.0
    );
    for (kind, share) in stats.kind_shares() {
        if share > 0.0 {
            println!("  {kind:>10}: {share:5.1}% of constraints");
        }
    }

    // --- Fig. 6 view: satisfiability by constraint count ----------------
    let curve = supply_curve(&model, &population, 20_000, &mut rng);
    let demand = stats.demand_curve();
    println!("\n== jobs asking k constraints vs nodes able to serve them ==");
    println!("  k   demand%   supply%");
    for k in 0..6 {
        println!("  {}   {:6.1}   {:6.1}", k + 1, demand[k], curve[k]);
    }

    // --- CRV table: demand/supply ratios under a queued burst -----------
    let index = FeasibilityIndex::new(population.into_machines());
    let mut table = CrvTable::new();
    for _ in 0..500 {
        let set = model.synthesize_set(&mut rng);
        table.add_demand_set(&set);
        for (kind, supply) in index.kind_supply(&set) {
            table.set_supply(kind, supply as f64);
        }
    }
    println!("\n== CRV lookup table for a 500-task constrained burst ==");
    print!("{table}");
    let (kind, ratio) = table.max_ratio();
    println!("hottest kind: {kind} at demand/supply ratio {ratio:.3}");
}
