//! Scheduler shootout: run the same workload under Phoenix and all four
//! baselines and compare short-job tail latencies — a miniature of the
//! paper's Figs. 7/10/11 on one trace.
//!
//! ```sh
//! cargo run --release --example scheduler_shootout [-- yahoo|cloudera|google]
//! ```

use phoenix::prelude::*;

fn main() {
    let trace_name = std::env::args().nth(1).unwrap_or_else(|| "yahoo".into());
    let profile = TraceProfile::by_name(&trace_name).expect("yahoo, cloudera or google");
    let nodes = profile.default_nodes / 20;
    println!(
        "trace {}, {} workers, target utilization 0.9\n",
        profile.name, nodes
    );

    let kinds = [
        SchedulerKind::Phoenix,
        SchedulerKind::EagleC,
        SchedulerKind::HawkC,
        SchedulerKind::SparrowC,
        SchedulerKind::YaqD,
    ];
    let specs: Vec<RunSpec> = kinds
        .iter()
        .map(|&kind| {
            let mut spec = RunSpec::new(profile.clone(), kind);
            spec.nodes = nodes;
            spec.gen_nodes = nodes;
            spec.gen_util = 0.9;
            spec.jobs = 6_000;
            spec.seed = 11;
            spec.record_task_waits = false;
            spec
        })
        .collect();
    let results = run_many(&specs);

    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "scheduler", "util %", "p50 (s)", "p90 (s)", "p99 (s)", "vs phoenix"
    );
    let phoenix_p99 = results[0].class_response_percentile(JobClass::Short, 99.0);
    for r in &results {
        let p99 = r.class_response_percentile(JobClass::Short, 99.0);
        println!(
            "{:<10} {:>8.1} {:>10.1} {:>10.1} {:>10.1} {:>11.2}x",
            r.scheduler,
            r.utilization() * 100.0,
            r.class_response_percentile(JobClass::Short, 50.0),
            r.class_response_percentile(JobClass::Short, 90.0),
            p99,
            p99 / phoenix_p99,
        );
    }
}
