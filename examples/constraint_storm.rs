//! Constraint storm: a hand-built adversarial scenario exercising
//! Phoenix's admission control and CRV reordering.
//!
//! A small cluster with a scarce ARM pool receives a storm of short jobs
//! that all demand ARM machines (some with an additionally unsatisfiable
//! soft clock constraint), interleaved with unconstrained filler. Watch
//! Phoenix negotiate the soft constraints away, reorder the scarce queues,
//! and keep both job groups moving.
//!
//! ```sh
//! cargo run --release --example constraint_storm
//! ```

use phoenix::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_cluster() -> Vec<AttributeVector> {
    let mut machines = Vec::new();
    // 90 commodity x86 machines at 2.2 GHz.
    for i in 0..90u32 {
        machines.push(
            AttributeVector::builder()
                .isa(Isa::X86)
                .num_cores(16)
                .cpu_clock_mhz(2_200)
                .rack(i / 30)
                .build(),
        );
    }
    // A scarce pool of 10 ARM machines, also at 2.2 GHz: the storm target.
    for i in 0..10u32 {
        machines.push(
            AttributeVector::builder()
                .isa(Isa::Arm)
                .num_cores(32)
                .cpu_clock_mhz(2_200)
                .rack(3 + i / 5)
                .build(),
        );
    }
    machines
}

fn main() {
    let machines = build_cluster();
    let arm = ConstraintSet::from_constraints(vec![Constraint::hard(
        ConstraintKind::Architecture,
        ConstraintOp::Eq,
        Isa::Arm as u64,
    )]);
    // ARM plus a soft clock demand no machine in this cluster satisfies —
    // admission control must relax it (with the Table II slowdown) instead
    // of failing the job.
    let arm_fast = ConstraintSet::from_constraints(vec![
        Constraint::hard(
            ConstraintKind::Architecture,
            ConstraintOp::Eq,
            Isa::Arm as u64,
        ),
        Constraint::soft(ConstraintKind::CpuClockSpeed, ConstraintOp::Gt, 3_000),
    ]);

    let mut rng = StdRng::seed_from_u64(3);
    let mut jobs = Vec::new();
    let mut push_job =
        |id: u32, arrival: f64, tasks: usize, dur: f64, set: ConstraintSet, short| {
            jobs.push(Job {
                id: JobId(id),
                arrival_s: arrival,
                task_durations_s: vec![dur; tasks],
                estimated_task_duration_s: dur,
                constraints: set,
                short,
                user: id % 7,
            });
        };
    let mut id = 0;
    // Background filler: unconstrained short jobs, steady arrivals.
    for i in 0..300 {
        push_job(
            id,
            i as f64 * 2.0,
            2,
            20.0,
            ConstraintSet::unconstrained(),
            true,
        );
        id += 1;
    }
    // The storm: between t=100 and t=160, sixty ARM-demanding jobs arrive.
    for i in 0..60 {
        let set = if i % 3 == 0 {
            arm_fast.clone()
        } else {
            arm.clone()
        };
        use rand::Rng;
        let jitter: f64 = rng.random::<f64>();
        push_job(id, 100.0 + i as f64 + jitter, 3, 30.0, set, true);
        id += 1;
    }
    let trace = Trace::new("constraint-storm", jobs);

    for kind in [SchedulerKind::Phoenix, SchedulerKind::EagleC] {
        let result = Simulation::new(
            SimConfig::default(),
            FeasibilityIndex::new(machines.clone()),
            &trace,
            kind.build(500.0),
            3,
        )
        .run();
        let constrained_key = LatencyKey::new(JobClass::Short, ConstraintStatus::Constrained);
        let unconstrained_key = LatencyKey::new(JobClass::Short, ConstraintStatus::Unconstrained);
        println!("== {} ==", result.scheduler);
        println!(
            "  storm (ARM) jobs:   p50 {:>7.1}s  p99 {:>7.1}s",
            result.response_percentile(constrained_key, 50.0),
            result.response_percentile(constrained_key, 99.0),
        );
        println!(
            "  filler jobs:        p50 {:>7.1}s  p99 {:>7.1}s",
            result.response_percentile(unconstrained_key, 50.0),
            result.response_percentile(unconstrained_key, 99.0),
        );
        println!(
            "  failed {}, relaxed tasks {}, crv reorders {}, migrations {}\n",
            result.counters.jobs_failed,
            result.counters.relaxed_tasks,
            result.counters.crv_reordered_tasks,
            result.counters.migrated_probes,
        );
        assert_eq!(
            result.counters.jobs_failed, 0,
            "soft constraints must be negotiated, not failed"
        );
    }
}
